// Command benchdiff compares a `go test -bench` run against a recorded
// baseline (BENCH_*.json style) and flags regressions:
//
//	go test -run xxx -bench 'Table2|Prescreen' -benchmem -benchtime 2x -count 3 . > bench.out
//	benchdiff -baseline BENCH_PR2.json bench.out
//
// With no -baseline, the newest BENCH_*.json in the current directory
// (by modification time) is used, so the default always compares against
// the most recently recorded PR.
//
// For every benchmark present in both the baseline's "after" section and
// the fresh run, it compares median ns/op and prints the delta; any
// slowdown beyond -threshold percent (default 10) makes the command exit
// nonzero. Benchmarks in the baseline but missing from the run are
// reported as warnings, never failures, so a restricted -bench pattern
// still works.
//
// -json FILE additionally writes the comparison as a machine-readable
// report (CI uploads it as an artifact); "-" sends the JSON to stdout
// instead of the text table.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// benchEntry mirrors one benchmark record of the baseline JSON.
type benchEntry struct {
	NsPerOp     []float64 `json:"ns_per_op"`
	BytesPerOp  float64   `json:"bytes_per_op"`
	AllocsPerOp float64   `json:"allocs_per_op"`
}

// baselineFile mirrors the BENCH_PR2.json schema; only the "after"
// section (the current expected performance) is compared against.
type baselineFile struct {
	Description string                `json:"description"`
	Machine     string                `json:"machine"`
	After       map[string]benchEntry `json:"after"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline JSON file (compared against its \"after\" section); default: newest BENCH_*.json")
		threshold    = flag.Float64("threshold", 10, "flag slowdowns beyond this percentage")
		jsonPath     = flag.String("json", "", "also write the comparison as JSON to this file (- for stdout)")
	)
	flag.Parse()
	if *baselinePath == "" {
		p, err := newestBaseline(".")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		*baselinePath = p
		fmt.Fprintln(os.Stderr, "benchdiff: baseline", p)
	}
	in := os.Stdin
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "benchdiff: at most one bench-output file")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	rep, err := compare(in, *baselinePath, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	rep.writeText(os.Stdout)
	if *jsonPath != "" {
		if err := writeJSONReport(*jsonPath, rep); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(1)
		}
	}
	if !rep.OK {
		os.Exit(1)
	}
}

// writeJSONReport writes rep as indented JSON to path ("-" = stdout).
func writeJSONReport(path string, rep *diffReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// newestBaseline returns the BENCH_*.json file in dir with the latest
// modification time.
func newestBaseline(dir string) (string, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return "", err
	}
	best, bestTime := "", time.Time{}
	for _, m := range matches {
		fi, err := os.Stat(m)
		if err != nil {
			continue
		}
		if best == "" || fi.ModTime().After(bestTime) {
			best, bestTime = m, fi.ModTime()
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_*.json baseline found in %s (pass -baseline)", dir)
	}
	return best, nil
}

// benchRow is one benchmark's comparison. Pointer fields are absent
// when the benchmark is missing from one side.
type benchRow struct {
	Name       string   `json:"name"`
	BaselineNs *float64 `json:"baseline_ns_per_op,omitempty"`
	CurrentNs  *float64 `json:"current_ns_per_op,omitempty"`
	DeltaPct   *float64 `json:"delta_pct,omitempty"`
	Regression bool     `json:"regression,omitempty"`
}

// diffReport is the full comparison: the text table and the -json
// artifact render from the same struct.
type diffReport struct {
	Baseline  string     `json:"baseline"`
	Threshold float64    `json:"threshold_pct"`
	OK        bool       `json:"ok"`
	Rows      []benchRow `json:"benchmarks"`
}

// run compares the bench output read from in against the baseline file;
// it returns false when a regression beyond threshold percent was found.
func run(out io.Writer, in io.Reader, baselinePath string, threshold float64) (bool, error) {
	rep, err := compare(in, baselinePath, threshold)
	if err != nil {
		return false, err
	}
	rep.writeText(out)
	return rep.OK, nil
}

// compare builds the diff report: baseline rows in name order, then
// baseline-less benchmarks in name order.
func compare(in io.Reader, baselinePath string, threshold float64) (*diffReport, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("%s: %w", baselinePath, err)
	}
	if len(base.After) == 0 {
		return nil, fmt.Errorf("%s: no \"after\" benchmarks", baselinePath)
	}
	runs, err := parseBench(in)
	if err != nil {
		return nil, err
	}
	if len(runs) == 0 {
		return nil, fmt.Errorf("no benchmark lines in input")
	}

	names := make([]string, 0, len(base.After))
	for name := range base.After {
		names = append(names, name)
	}
	sort.Strings(names)

	rep := &diffReport{Baseline: baselinePath, Threshold: threshold, OK: true}
	for _, name := range names {
		baseMed := median(base.After[name].NsPerOp)
		row := benchRow{Name: name, BaselineNs: &baseMed}
		if got, present := runs[name]; present {
			gotMed := median(got)
			delta := 100 * (gotMed - baseMed) / baseMed
			row.CurrentNs, row.DeltaPct = &gotMed, &delta
			if delta > threshold {
				row.Regression = true
				rep.OK = false
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	extra := make([]string, 0, len(runs))
	for name := range runs {
		if _, known := base.After[name]; !known {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		gotMed := median(runs[name])
		rep.Rows = append(rep.Rows, benchRow{Name: name, CurrentNs: &gotMed})
	}
	return rep, nil
}

// writeText renders the human-readable comparison table.
func (rep *diffReport) writeText(out io.Writer) {
	fmt.Fprintf(out, "%-28s %14s %14s %8s\n", "benchmark", "baseline ns/op", "current ns/op", "delta")
	for _, row := range rep.Rows {
		switch {
		case row.CurrentNs == nil:
			fmt.Fprintf(out, "%-28s %14.0f %14s %8s  (not in this run)\n", row.Name, *row.BaselineNs, "-", "-")
		case row.BaselineNs == nil:
			fmt.Fprintf(out, "%-28s %14s %14.0f %8s  (no baseline)\n", row.Name, "-", *row.CurrentNs, "-")
		default:
			mark := ""
			if row.Regression {
				mark = fmt.Sprintf("  REGRESSION (>%g%%)", rep.Threshold)
			}
			fmt.Fprintf(out, "%-28s %14.0f %14.0f %+7.1f%%%s\n", row.Name, *row.BaselineNs, *row.CurrentNs, *row.DeltaPct, mark)
		}
	}
	if rep.OK {
		fmt.Fprintf(out, "no regressions beyond %g%%\n", rep.Threshold)
	}
}

// parseBench extracts ns/op samples from `go test -bench` output, keyed
// by benchmark name with the -GOMAXPROCS suffix stripped. Repeated lines
// (from -count N) accumulate.
func parseBench(r io.Reader) (map[string][]float64, error) {
	runs := make(map[string][]float64)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// Benchmark lines read: Name-P  N  ns op [bytes B/op allocs allocs/op]
		var ns float64
		found := false
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] == "ns/op" {
				v, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
				}
				ns, found = v, true
				break
			}
		}
		if !found {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		runs[name] = append(runs[name], ns)
	}
	return runs, sc.Err()
}

// median returns the middle sample (mean of the middle two for even
// counts).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}
