package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
BenchmarkTable2_sg298-8         	       2	  21000000 ns/op	 2046156 B/op	    4985 allocs/op
BenchmarkTable2_sg298-8         	       2	  20500000 ns/op	 2046156 B/op	    4985 allocs/op
BenchmarkTable2_sg298-8         	       2	  22000000 ns/op	 2046156 B/op	    4985 allocs/op
BenchmarkNewThing-8             	      10	   1000000 ns/op
PASS
`

const sampleBaseline = `{
  "after": {
    "BenchmarkTable2_sg298": {"ns_per_op": [20777534, 22980216, 19756759]},
    "BenchmarkTable2_sg641": {"ns_per_op": [322921497, 307476224, 297388467]}
  }
}`

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBench(t *testing.T) {
	runs, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if got := runs["BenchmarkTable2_sg298"]; len(got) != 3 {
		t.Fatalf("sg298 samples = %v, want 3", got)
	}
	if got := runs["BenchmarkNewThing"]; len(got) != 1 || got[0] != 1000000 {
		t.Fatalf("NewThing samples = %v", got)
	}
}

func TestMedian(t *testing.T) {
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("odd median = %v", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("even median = %v", m)
	}
	if m := median(nil); m != 0 {
		t.Errorf("empty median = %v", m)
	}
}

// TestRunWithinThreshold: sample medians 21.0ms vs baseline 20.78ms is
// ~1% slower — inside the default 10% threshold.
func TestRunWithinThreshold(t *testing.T) {
	var out bytes.Buffer
	ok, err := run(&out, strings.NewReader(sampleBench), writeBaseline(t, sampleBaseline), 10)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("flagged a regression within threshold:\n%s", out.String())
	}
	text := out.String()
	if !strings.Contains(text, "no regressions") {
		t.Errorf("missing pass line:\n%s", text)
	}
	if !strings.Contains(text, "not in this run") {
		t.Errorf("missing-benchmark warning absent:\n%s", text)
	}
	if !strings.Contains(text, "no baseline") {
		t.Errorf("new-benchmark note absent:\n%s", text)
	}
}

// TestRunNewBenchmarksSorted: benchmarks absent from the baseline are
// listed in name order, so repeated runs produce identical reports.
func TestRunNewBenchmarksSorted(t *testing.T) {
	bench := sampleBench + "BenchmarkAardvark-8             	      10	   2000000 ns/op\n"
	var out bytes.Buffer
	if _, err := run(&out, strings.NewReader(bench), writeBaseline(t, sampleBaseline), 10); err != nil {
		t.Fatal(err)
	}
	a := strings.Index(out.String(), "BenchmarkAardvark")
	b := strings.Index(out.String(), "BenchmarkNewThing")
	if a < 0 || b < 0 || a > b {
		t.Errorf("new benchmarks not sorted (Aardvark@%d, NewThing@%d):\n%s", a, b, out.String())
	}
}

// TestRunFlagsRegression: with a 1% threshold the same sample counts as
// a regression and run returns ok=false.
func TestRunFlagsRegression(t *testing.T) {
	var out bytes.Buffer
	ok, err := run(&out, strings.NewReader(sampleBench), writeBaseline(t, sampleBaseline), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("regression not flagged:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("REGRESSION marker missing:\n%s", out.String())
	}
}

// TestCompareJSONReport: the -json artifact carries the same verdict
// and rows as the text table, absent sides omitted rather than zeroed.
func TestCompareJSONReport(t *testing.T) {
	rep, err := compare(strings.NewReader(sampleBench), writeBaseline(t, sampleBaseline), 10)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var round diffReport
	if err := json.Unmarshal(data, &round); err != nil {
		t.Fatal(err)
	}
	if !round.OK || round.Threshold != 10 {
		t.Errorf("report verdict = ok:%v threshold:%v", round.OK, round.Threshold)
	}
	rows := make(map[string]benchRow)
	for _, r := range round.Rows {
		rows[r.Name] = r
	}
	sg := rows["BenchmarkTable2_sg298"]
	if sg.BaselineNs == nil || sg.CurrentNs == nil || sg.DeltaPct == nil || sg.Regression {
		t.Errorf("sg298 row incomplete: %+v", sg)
	}
	if miss := rows["BenchmarkTable2_sg641"]; miss.CurrentNs != nil || miss.BaselineNs == nil {
		t.Errorf("missing-from-run row wrong: %+v", miss)
	}
	if fresh := rows["BenchmarkNewThing"]; fresh.BaselineNs != nil || fresh.CurrentNs == nil {
		t.Errorf("no-baseline row wrong: %+v", fresh)
	}
	if strings.Contains(string(data), `"baseline_ns_per_op":0`) {
		t.Errorf("absent side marshaled as zero:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if _, err := run(&out, strings.NewReader(sampleBench), filepath.Join(t.TempDir(), "missing.json"), 10); err == nil {
		t.Error("missing baseline accepted")
	}
	if _, err := run(&out, strings.NewReader(sampleBench), writeBaseline(t, `{"after":{}}`), 10); err == nil {
		t.Error("empty baseline accepted")
	}
	if _, err := run(&out, strings.NewReader("PASS\n"), writeBaseline(t, sampleBaseline), 10); err == nil {
		t.Error("benchless input accepted")
	}
}
