package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunInject(t *testing.T) {
	if err := run("", "s27", "", 16, 1997, "", "G17/SA0", "000", 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunInjectDefaultInit(t *testing.T) {
	if err := run("", "s27", "", 12, 7, "", "G17/SA0", "", 3); err != nil {
		t.Fatal(err)
	}
}

func TestRunFailureLog(t *testing.T) {
	log := filepath.Join(t.TempDir(), "fails.log")
	if err := os.WriteFile(log, []byte("# header\n0 0\n2 0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", "s27", "", 8, 1, log, "", "", 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejects(t *testing.T) {
	if run("", "", "", 8, 1, "", "G17/SA0", "", 5) == nil {
		t.Error("no circuit accepted")
	}
	if run("", "s27", "", 0, 1, "", "G17/SA0", "", 5) == nil {
		t.Error("no sequence accepted")
	}
	if run("", "s27", "", 8, 1, "", "", "", 5) == nil {
		t.Error("no observation source accepted")
	}
	if run("", "s27", "", 8, 1, "", "nope/SA7", "", 5) == nil {
		t.Error("unknown fault accepted")
	}
	if run("", "s27", "", 8, 1, "", "G17/SA0", "01", 5) == nil {
		t.Error("wrong init width accepted")
	}
	if run("", "s27", "", 8, 1, filepath.Join(t.TempDir(), "missing.log"), "", "", 5) == nil {
		t.Error("missing failure log accepted")
	}
}

func TestReadFailuresBadLine(t *testing.T) {
	log := filepath.Join(t.TempDir(), "bad.log")
	if err := os.WriteFile(log, []byte("frob\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readFailures(log); err == nil {
		t.Error("malformed failure line accepted")
	}
}
