// Command motdiag performs fault-dictionary diagnosis: it builds the
// pass/fail dictionary of a circuit under a test sequence, obtains an
// observed failure set — either from a failure-log file or by simulating
// a device with a chosen fault and initial state — and prints the ranked
// candidate faults.
//
//	motdiag -circuit s27 -random 16 -seed 42 -inject 'G11/SA0' -init 101
//	motdiag -bench d.bench -vectors t.vec -failures fails.log
//
// A failure log lists one failing observation per line: "TIME OUTPUT".
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/diagnosis"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "ISCAS-89 .bench netlist file")
		builtin   = flag.String("circuit", "", "built-in circuit name")
		vecPath   = flag.String("vectors", "", "test sequence file")
		randomLen = flag.Int("random", 0, "random test sequence length")
		seed      = flag.Int64("seed", 1, "random sequence seed")
		failPath  = flag.String("failures", "", "failure log file (TIME OUTPUT per line)")
		inject    = flag.String("inject", "", "simulate a device with this fault (name as printed by motfsim -list)")
		initBits  = flag.String("init", "", "initial state bits for -inject (e.g. 101); default all zeros")
		top       = flag.Int("top", 10, "print the N best candidates")
	)
	flag.Parse()
	if err := run(*benchPath, *builtin, *vecPath, *randomLen, *seed, *failPath, *inject, *initBits, *top); err != nil {
		fmt.Fprintln(os.Stderr, "motdiag:", err)
		os.Exit(1)
	}
}

func run(benchPath, builtin, vecPath string, randomLen int, seed int64,
	failPath, inject, initBits string, top int) error {

	var (
		c   *motsim.Circuit
		err error
	)
	switch {
	case benchPath != "":
		c, err = motsim.LoadBench(benchPath)
	case builtin != "":
		c, err = motsim.BuiltinCircuit(builtin)
	default:
		return fmt.Errorf("need -bench FILE or -circuit NAME")
	}
	if err != nil {
		return err
	}

	var T motsim.Sequence
	switch {
	case vecPath != "":
		if T, err = motsim.ReadVectorsFile(vecPath); err != nil {
			return err
		}
	case randomLen > 0:
		T = motsim.RandomSequence(c, randomLen, seed)
	default:
		return fmt.Errorf("need -vectors FILE or -random N")
	}

	faults := motsim.CollapsedFaults(c)
	dict, err := diagnosis.Build(c, T, faults)
	if err != nil {
		return err
	}
	fmt.Printf("dictionary: %s, %d faults, %d patterns\n", c.Name, len(faults), len(T))

	var obs *diagnosis.Observation
	switch {
	case failPath != "":
		failures, err := readFailures(failPath)
		if err != nil {
			return err
		}
		if obs, err = dict.NewObservation(failures); err != nil {
			return err
		}
		fmt.Printf("observation: %d failing positions from %s\n", len(failures), failPath)
	case inject != "":
		f, err := motsim.FaultByName(c, faults, inject)
		if err != nil {
			return err
		}
		init := make([]int, c.NumFFs())
		if initBits != "" {
			if len(initBits) != c.NumFFs() {
				return fmt.Errorf("-init needs %d bits", c.NumFFs())
			}
			for i := 0; i < len(initBits); i++ {
				if initBits[i] == '1' {
					init[i] = 1
				}
			}
		}
		if obs, err = dict.ObservationOf(f, init); err != nil {
			return err
		}
		fmt.Printf("observation: simulated device with %s, initial state %v\n", inject, init)
	default:
		return fmt.Errorf("need -failures FILE or -inject FAULT")
	}

	cands := dict.Diagnose(obs)
	if top > len(cands) {
		top = len(cands)
	}
	fmt.Println("rank  exact  matched  missed  unexplained  fault")
	for i := 0; i < top; i++ {
		cd := cands[i]
		fmt.Printf("%4d  %-5v  %7d  %6d  %11d  %s\n",
			i+1, cd.Exact, cd.Matched, cd.Missed, cd.Unexplained, cd.Fault.Name(c))
	}
	return nil
}

// readFailures parses a failure log.
func readFailures(path string) ([]diagnosis.Position, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out []diagnosis.Position
	sc := bufio.NewScanner(f)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var p diagnosis.Position
		if _, err := fmt.Sscanf(line, "%d %d", &p.Time, &p.Output); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, lineNo, err)
		}
		out = append(out, p)
	}
	return out, sc.Err()
}
