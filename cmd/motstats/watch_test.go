package main

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// stubExposition is a minimal motserve-shaped scrape.
const stubExposition = `motserve_runs_started_total 1
motserve_runs_done_total 0
motserve_runs_active 1
motserve_runs_queued 0
motserve_faults_total 100
motserve_faults_done_total 40
motserve_detected_conventional_total 30
motserve_detected_mot_total 2
motserve_pruned_condition_c_total 8
motserve_prescreen_dropped_total 0
motserve_stage_step0_seconds_total 0.5
motserve_stage_collect_seconds_total 0.25
motserve_stage_imply_seconds_total 0.1
motserve_stage_expand_seconds_total 0.05
motserve_stage_resim_seconds_total 0.05
motserve_stage_mot_seconds_total 0.85
motserve_events_total 5000
motserve_event_frames_total 700
motserve_resim_vector_passes_total 20
motserve_imply_calls_total 900
motserve_go_goroutines 8
motserve_go_heap_bytes 1048576
motserve_go_stack_bytes 65536
motserve_go_gc_cycles_total 2
motserve_go_alloc_bytes_total 2097152
`

// stubServer mimics the motserve endpoints -watch touches: /metrics,
// the run list, and one run's SSE event feed.
func stubServer(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var scrapes atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		scrapes.Add(1)
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, stubExposition)
	})
	mux.HandleFunc("GET /runs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"runs":[{"id":"r0001","status":"running"}]}`)
	})
	mux.HandleFunc("GET /runs/r0001/events", func(w http.ResponseWriter, r *http.Request) {
		fl := w.(http.Flusher)
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, "event: progress\ndata: {\"faults_total\":100,\"faults_done\":40,\"detected_conventional\":30}\n\n")
		fl.Flush()
		// Keep the stream open until the watcher disconnects, like a
		// still-executing run would.
		<-r.Context().Done()
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &scrapes
}

// TestWatchSingleSnapshot covers the no-TTY fallback: one scrape, one
// rendered frame, exit.
func TestWatchSingleSnapshot(t *testing.T) {
	ts, scrapes := stubServer(t)
	var out strings.Builder
	if err := run(runOptions{watchURL: ts.URL, watchPrefix: "motserve", out: &out}); err != nil {
		t.Fatal(err)
	}
	if n := scrapes.Load(); n != 1 {
		t.Errorf("snapshot mode scraped %d times, want 1", n)
	}
	frame := out.String()
	for _, want := range []string{
		"motserve dashboard",
		"faults: 40/100 done (40.0%)",
		"go: 8 goroutines",
	} {
		if !strings.Contains(frame, want) {
			t.Errorf("snapshot missing %q:\n%s", want, frame)
		}
	}
	if strings.Contains(frame, "\x1b[") {
		t.Error("snapshot mode emitted ANSI control sequences")
	}
}

// TestWatchFollowsActiveRun drives a bounded multi-frame watch and
// asserts the SSE-followed run's progress shows up in a frame.
func TestWatchFollowsActiveRun(t *testing.T) {
	ts, scrapes := stubServer(t)
	var out strings.Builder
	err := run(runOptions{
		watchURL:    ts.URL + "/metrics", // a /metrics URL works as the base too
		watchPrefix: "motserve",
		interval:    50 * time.Millisecond,
		frames:      8,
		out:         &out,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := scrapes.Load(); n != 8 {
		t.Errorf("watch mode scraped %d times, want 8", n)
	}
	frame := out.String()
	if !strings.Contains(frame, "following run r0001") {
		t.Errorf("watch frames never showed the followed run:\n%s", frame)
	}
	if !strings.Contains(frame, "active run:") || !strings.Contains(frame, "40/100 faults") {
		t.Errorf("watch frames never rendered the SSE progress snapshot:\n%s", frame)
	}
}

// TestWatchBadEndpoint surfaces a first-scrape failure as an error.
func TestWatchBadEndpoint(t *testing.T) {
	var out strings.Builder
	err := run(runOptions{watchURL: "127.0.0.1:1", watchPrefix: "motserve", out: &out})
	if err == nil {
		t.Fatal("watch of an unreachable endpoint succeeded")
	}
}
