package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/report"
)

// isTTY reports whether f is an interactive terminal — the gate between
// the repainting dashboard and the single-snapshot fallback.
func isTTY(f *os.File) bool {
	fi, err := f.Stat()
	return err == nil && fi.Mode()&os.ModeCharDevice != 0
}

// pollMetrics scrapes url and parses the exposition.
func pollMetrics(client *http.Client, url string) (report.WatchSnapshot, error) {
	resp, err := client.Get(url)
	if err != nil {
		return report.WatchSnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return report.WatchSnapshot{}, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	m, err := report.ParseMetrics(resp.Body)
	if err != nil {
		return report.WatchSnapshot{}, err
	}
	return report.WatchSnapshot{At: time.Now(), Metrics: m}, nil
}

// runFollower tracks the newest executing run over the server's SSE
// event feed, keeping the latest progress snapshot for the dashboard.
// A nil follower (sidecar endpoints without a run API) is valid and
// always reports no active run.
type runFollower struct {
	base   string
	client *http.Client
	cancel context.CancelFunc
	done   chan struct{}

	mu    sync.Mutex
	runID string
	live  *core.LiveSnapshot
}

// newRunFollower starts following base's active runs in the background.
func newRunFollower(base string, client *http.Client) *runFollower {
	ctx, cancel := context.WithCancel(context.Background())
	f := &runFollower{base: base, client: client, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(f.done)
		for ctx.Err() == nil {
			id := f.activeRun(ctx)
			if id == "" {
				f.set("", nil)
				select {
				case <-ctx.Done():
				case <-time.After(500 * time.Millisecond):
				}
				continue
			}
			f.follow(ctx, id)
		}
	}()
	return f
}

func (f *runFollower) stop() {
	if f == nil {
		return
	}
	f.cancel()
	<-f.done
}

// latest returns the most recent progress snapshot of the followed run,
// nil when no run is executing.
func (f *runFollower) latest() (string, *core.LiveSnapshot) {
	if f == nil {
		return "", nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.runID, f.live
}

func (f *runFollower) set(id string, live *core.LiveSnapshot) {
	f.mu.Lock()
	f.runID, f.live = id, live
	f.mu.Unlock()
}

// activeRun returns the ID of the newest queued or running run, or "".
// Endpoints without a run API (batch-CLI sidecars) simply yield "".
func (f *runFollower) activeRun(ctx context.Context) string {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base+"/runs", nil)
	if err != nil {
		return ""
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ""
	}
	var list struct {
		Runs []struct {
			ID     string `json:"id"`
			Status string `json:"status"`
		} `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return ""
	}
	for i := len(list.Runs) - 1; i >= 0; i-- {
		if s := list.Runs[i].Status; s == "running" || s == "queued" {
			return list.Runs[i].ID
		}
	}
	return ""
}

// follow streams /runs/{id}/events, updating the latest progress
// snapshot until the stream ends (run finished) or ctx is canceled. The
// SSE request carries no timeout — the stream is long-lived by design.
func (f *runFollower) follow(ctx context.Context, id string) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.base+"/runs/"+id+"/events", nil)
	if err != nil {
		return
	}
	resp, err := (&http.Client{Transport: f.client.Transport}).Do(req)
	if err != nil {
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	event := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event == "progress":
			var live core.LiveSnapshot
			if json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &live) == nil {
				f.set(id, &live)
			}
		}
	}
	f.set("", nil)
}

// runWatch drives the -watch dashboard: poll /metrics on the interval,
// follow the active run's SSE feed, and repaint the terminal each
// frame. Without a TTY (or with -once) it prints a single snapshot and
// exits, so piping motstats -watch into a file stays sane.
func runWatch(o runOptions) error {
	out := o.out
	tty := false
	if out == nil {
		out = os.Stdout
		tty = isTTY(os.Stdout)
	}
	base := strings.TrimSuffix(strings.TrimRight(o.watchURL, "/"), "/metrics")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	if o.interval <= 0 {
		o.interval = 2 * time.Second
	}
	client := &http.Client{Timeout: 10 * time.Second}

	once := o.once || (!tty && o.frames == 0)
	var follower *runFollower
	if !once {
		follower = newRunFollower(base, client)
		defer follower.stop()
	}

	var prev report.WatchSnapshot
	for frame := 1; ; frame++ {
		cur, err := pollMetrics(client, base+"/metrics")
		switch {
		case err != nil && frame == 1:
			return err
		case err != nil:
			// Mid-watch scrape failures are transient (server restarting,
			// run swamping the machine): report and keep the last frame.
			fmt.Fprintf(out, "scrape error: %v\n", err)
		default:
			runID, live := follower.latest()
			if tty {
				fmt.Fprint(out, "\x1b[H\x1b[2J") // home + clear: repaint in place
			}
			if runID != "" {
				fmt.Fprintf(out, "following run %s\n", runID)
			}
			fmt.Fprint(out, report.FormatWatch(o.watchPrefix, prev, cur, live))
			prev = cur
		}
		if once || (o.frames > 0 && frame >= o.frames) {
			return nil
		}
		time.Sleep(o.interval)
	}
}
