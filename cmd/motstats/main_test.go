package main

import "testing"

func TestRunS27WithOracle(t *testing.T) {
	if err := run("", "s27", true, 16, 1, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRunSuiteCircuit(t *testing.T) {
	if err := run("", "sg208", false, 0, 1, 5); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejects(t *testing.T) {
	if run("", "", false, 0, 1, 0) == nil {
		t.Error("no circuit accepted")
	}
	if run("", "bogus", false, 0, 1, 0) == nil {
		t.Error("unknown circuit accepted")
	}
	// Oracle on a circuit with too many flip-flops (sg1423 has 74) must
	// fail cleanly and quickly.
	if run("", "sg1423", true, 8, 1, 0) == nil {
		t.Error("oracle over the FF limit accepted")
	}
}
