package main

import (
	"bytes"
	"strings"
	"testing"
)

// opts builds baseline test options writing to a buffer.
func opts(builtin string) (runOptions, *bytes.Buffer) {
	var buf bytes.Buffer
	return runOptions{
		builtin:   builtin,
		randomLen: 16,
		seed:      1,
		worst:     3,
		workers:   1,
		out:       &buf,
	}, &buf
}

func TestRunS27WithOracle(t *testing.T) {
	o, _ := opts("s27")
	o.useOracle = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunSuiteCircuit(t *testing.T) {
	o, _ := opts("sg208")
	o.randomLen = 0
	o.worst = 5
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejects(t *testing.T) {
	o, _ := opts("")
	if run(o) == nil {
		t.Error("no circuit accepted")
	}
	o, _ = opts("bogus")
	if run(o) == nil {
		t.Error("unknown circuit accepted")
	}
	// Oracle on a circuit with too many flip-flops (sg1423 has 74) must
	// fail cleanly and quickly.
	o, _ = opts("sg1423")
	o.useOracle = true
	o.randomLen = 8
	o.worst = 0
	if run(o) == nil {
		t.Error("oracle over the FF limit accepted")
	}
	// -mot needs a sequence and a positive worker count.
	o, _ = opts("s27")
	o.mot = true
	o.randomLen = 0
	if run(o) == nil {
		t.Error("-mot without a sequence accepted")
	}
	o, _ = opts("s27")
	o.mot = true
	o.workers = 0
	if run(o) == nil {
		t.Error("-mot with zero workers accepted")
	}
}

// TestRunMOTBreakdown checks the -mot mode prints the per-stage
// breakdown and histogram summaries.
func TestRunMOTBreakdown(t *testing.T) {
	o, buf := opts("sg208")
	o.mot = true
	o.randomLen = 24
	o.workers = 2
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"MOT run (24 random patterns, 2 workers",
		"stage breakdown",
		"pair collection",
		"implication calls",
		"pairs/fault",
		"fault time",
		"live snapshot (1/1 runs",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-mot output missing %q:\n%s", want, out)
		}
	}
}

// TestRunMOTSpans checks -spans appends the straggler table to the
// -mot report.
func TestRunMOTSpans(t *testing.T) {
	o, buf := opts("sg208")
	o.mot = true
	o.randomLen = 24
	o.workers = 2
	o.spans = true
	o.top = 5
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "traced faults by wall time") {
		t.Fatalf("-spans output missing straggler table:\n%s", out)
	}
	if !strings.Contains(out, "outcome") || !strings.Contains(out, "pairs") {
		t.Fatalf("straggler table missing columns:\n%s", out)
	}
}
