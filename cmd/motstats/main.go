// Command motstats prints structural and testability diagnostics for a
// circuit: size statistics, SCOAP-style controllability/observability
// summaries, structural observability/controllability sets, sequential
// depth, and (for small circuits) exact oracle detectability counts.
//
//	motstats -circuit s27
//	motstats -bench design.bench -oracle -random 32
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/oracle"
	"repro/internal/testability"
)

func main() {
	var (
		benchPath = flag.String("bench", "", "ISCAS-89 .bench netlist file")
		builtin   = flag.String("circuit", "", "built-in circuit name")
		useOracle = flag.Bool("oracle", false, "run the exhaustive detectability oracle (small circuits only)")
		randomLen = flag.Int("random", 32, "sequence length for the oracle")
		seed      = flag.Int64("seed", 1, "sequence seed for the oracle")
		worst     = flag.Int("worst", 5, "list the N hardest-to-observe nodes")
	)
	flag.Parse()
	if err := run(*benchPath, *builtin, *useOracle, *randomLen, *seed, *worst); err != nil {
		fmt.Fprintln(os.Stderr, "motstats:", err)
		os.Exit(1)
	}
}

func run(benchPath, builtin string, useOracle bool, randomLen int, seed int64, worst int) error {
	var (
		c   *motsim.Circuit
		err error
	)
	switch {
	case benchPath != "":
		c, err = motsim.LoadBench(benchPath)
	case builtin != "":
		c, err = motsim.BuiltinCircuit(builtin)
	default:
		return fmt.Errorf("need -bench FILE or -circuit NAME")
	}
	if err != nil {
		return err
	}

	fmt.Println(c.Stats())

	obs := c.ObservableNodes()
	ctrl := c.ControllableNodes()
	nObs, nCtrl := 0, 0
	for n := 0; n < c.NumNodes(); n++ {
		if obs[n] {
			nObs++
		}
		if ctrl[n] {
			nCtrl++
		}
	}
	fmt.Printf("structural: %d/%d observable, %d/%d input-controllable\n",
		nObs, c.NumNodes(), nCtrl, c.NumNodes())

	depth := c.SequentialDepth()
	maxDepth, unreachable := 0, 0
	for _, d := range depth {
		if d < 0 {
			unreachable++
		} else if d > maxDepth {
			maxDepth = d
		}
	}
	fmt.Printf("sequential depth: max %d, %d flip-flops unreachable from inputs\n", maxDepth, unreachable)

	m := testability.Compute(c)
	fmt.Println("SCOAP:", m.Summarize(c))
	if worst > 0 {
		type hard struct {
			name string
			co   int32
		}
		var hs []hard
		for n := 0; n < c.NumNodes(); n++ {
			if m.CO[n] < testability.Inf {
				hs = append(hs, hard{c.NodeName(int32ToNode(n)), m.CO[n]})
			}
		}
		for i := 0; i < len(hs); i++ {
			for j := i + 1; j < len(hs); j++ {
				if hs[j].co > hs[i].co {
					hs[i], hs[j] = hs[j], hs[i]
				}
			}
		}
		if len(hs) > worst {
			hs = hs[:worst]
		}
		fmt.Println("hardest finite observabilities:")
		for _, h := range hs {
			fmt.Printf("  %-10s CO=%d\n", h.name, h.co)
		}
	}

	if useOracle {
		T := motsim.RandomSequence(c, randomLen, seed)
		o, err := oracle.New(c, T)
		if err != nil {
			return err
		}
		counts, _, err := o.DecideAll(motsim.CollapsedFaults(c))
		if err != nil {
			return err
		}
		fmt.Printf("oracle (%d random patterns): %d faults, conventional=%d restrictedMOT=%d fullMOT=%d\n",
			randomLen, counts.Total, counts.Conventional, counts.RestrictedMOT, counts.FullMOT)
	}
	return nil
}

func int32ToNode(n int) motsim.NodeID { return motsim.NodeID(n) }
