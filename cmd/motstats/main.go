// Command motstats prints structural and testability diagnostics for a
// circuit: size statistics, SCOAP-style controllability/observability
// summaries, structural observability/controllability sets, sequential
// depth, and (for small circuits) exact oracle detectability counts.
// With -mot it also runs the proposed MOT procedure over the collapsed
// fault list and prints the per-stage time breakdown, pool gauges and
// per-fault histograms.
//
//	motstats -circuit s27
//	motstats -bench design.bench -oracle -random 32
//	motstats -circuit sg298 -mot -random 144 -workers 4
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro"
	"repro/internal/oracle"
	"repro/internal/report"
	"repro/internal/testability"
)

// runOptions collects everything run needs; main fills it from flags,
// tests construct it directly.
type runOptions struct {
	benchPath string
	builtin   string
	useOracle bool
	randomLen int
	seed      int64
	worst     int
	mot       bool
	workers   int
	spans     bool
	top       int

	// -watch mode: poll a motserve (or -metrics-addr sidecar) /metrics
	// endpoint and render the live dashboard instead of analyzing a
	// circuit.
	watchURL    string
	watchPrefix string
	interval    time.Duration
	once        bool
	frames      int // tests bound the frame count; 0 = until interrupted

	out io.Writer // nil: os.Stdout
}

func main() {
	var o runOptions
	flag.StringVar(&o.benchPath, "bench", "", "ISCAS-89 .bench netlist file")
	flag.StringVar(&o.builtin, "circuit", "", "built-in circuit name")
	flag.BoolVar(&o.useOracle, "oracle", false, "run the exhaustive detectability oracle (small circuits only)")
	flag.IntVar(&o.randomLen, "random", 32, "sequence length for the oracle and -mot runs")
	flag.Int64Var(&o.seed, "seed", 1, "sequence seed for the oracle and -mot runs")
	flag.IntVar(&o.worst, "worst", 5, "list the N hardest-to-observe nodes")
	flag.BoolVar(&o.mot, "mot", false, "run the proposed MOT procedure and print the per-stage breakdown")
	flag.IntVar(&o.workers, "workers", runtime.NumCPU(), "worker goroutines for the -mot run")
	flag.BoolVar(&o.spans, "spans", false, "trace every fault of the -mot run and print the top-K stragglers by wall time")
	flag.IntVar(&o.top, "top", 10, "straggler rows to print with -spans")
	flag.StringVar(&o.watchURL, "watch", "", "live dashboard over a motserve base URL or metrics address (e.g. localhost:8080)")
	flag.StringVar(&o.watchPrefix, "watch-prefix", "motserve", "metric-name prefix of the watched exposition")
	flag.DurationVar(&o.interval, "interval", 2*time.Second, "refresh interval for -watch")
	flag.BoolVar(&o.once, "once", false, "print one -watch snapshot and exit (automatic without a TTY)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "motstats:", err)
		os.Exit(1)
	}
}

func run(o runOptions) error {
	if o.watchURL != "" {
		return runWatch(o)
	}
	if o.out == nil {
		o.out = os.Stdout
	}
	var (
		c   *motsim.Circuit
		err error
	)
	switch {
	case o.benchPath != "":
		c, err = motsim.LoadBench(o.benchPath)
	case o.builtin != "":
		c, err = motsim.BuiltinCircuit(o.builtin)
	default:
		return fmt.Errorf("need -bench FILE or -circuit NAME")
	}
	if err != nil {
		return err
	}

	fmt.Fprintln(o.out, c.Stats())

	obs := c.ObservableNodes()
	ctrl := c.ControllableNodes()
	nObs, nCtrl := 0, 0
	for n := 0; n < c.NumNodes(); n++ {
		if obs[n] {
			nObs++
		}
		if ctrl[n] {
			nCtrl++
		}
	}
	fmt.Fprintf(o.out, "structural: %d/%d observable, %d/%d input-controllable\n",
		nObs, c.NumNodes(), nCtrl, c.NumNodes())

	depth := c.SequentialDepth()
	maxDepth, unreachable := 0, 0
	for _, d := range depth {
		if d < 0 {
			unreachable++
		} else if d > maxDepth {
			maxDepth = d
		}
	}
	fmt.Fprintf(o.out, "sequential depth: max %d, %d flip-flops unreachable from inputs\n", maxDepth, unreachable)

	m := testability.Compute(c)
	fmt.Fprintln(o.out, "SCOAP:", m.Summarize(c))
	if o.worst > 0 {
		type hard struct {
			name string
			co   int32
		}
		var hs []hard
		for n := 0; n < c.NumNodes(); n++ {
			if m.CO[n] < testability.Inf {
				hs = append(hs, hard{c.NodeName(int32ToNode(n)), m.CO[n]})
			}
		}
		for i := 0; i < len(hs); i++ {
			for j := i + 1; j < len(hs); j++ {
				if hs[j].co > hs[i].co {
					hs[i], hs[j] = hs[j], hs[i]
				}
			}
		}
		if len(hs) > o.worst {
			hs = hs[:o.worst]
		}
		fmt.Fprintln(o.out, "hardest finite observabilities:")
		for _, h := range hs {
			fmt.Fprintf(o.out, "  %-10s CO=%d\n", h.name, h.co)
		}
	}

	if o.useOracle {
		T := motsim.RandomSequence(c, o.randomLen, o.seed)
		orc, err := oracle.New(c, T)
		if err != nil {
			return err
		}
		counts, _, err := orc.DecideAll(motsim.CollapsedFaults(c))
		if err != nil {
			return err
		}
		fmt.Fprintf(o.out, "oracle (%d random patterns): %d faults, conventional=%d restrictedMOT=%d fullMOT=%d\n",
			o.randomLen, counts.Total, counts.Conventional, counts.RestrictedMOT, counts.FullMOT)
	}

	if o.mot {
		return runMOT(o, c)
	}
	return nil
}

// runMOT simulates the collapsed fault list under the proposed procedure
// with metrics on and prints the instrumentation report.
func runMOT(o runOptions, c *motsim.Circuit) error {
	if o.randomLen <= 0 {
		return fmt.Errorf("-mot needs -random N > 0")
	}
	if o.workers < 1 {
		return fmt.Errorf("-workers must be at least 1, got %d", o.workers)
	}
	T := motsim.RandomSequence(c, o.randomLen, o.seed)
	faults := motsim.CollapsedFaults(c)
	cfg := motsim.DefaultConfig()
	// Publish live snapshots so the report's live section renders the
	// same counters as the merged stats (asserted by the report tests).
	cfg.Live = &motsim.LiveStats{}
	var tracer *motsim.Tracer
	if o.spans {
		// Stragglers need every fault's wall time, so sample at 1.0.
		tracer = motsim.NewTracer(motsim.TracerOptions{})
		cfg.Tracer = tracer
		cfg.TraceSampleRate = 1
	}
	s, err := motsim.New(c, T, cfg)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := s.RunParallel(faults, o.workers, nil)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	fmt.Fprintf(o.out, "MOT run (%d random patterns, %d workers, %s): %d faults, conventional=%d MOT-extra=%d undetected=%d\n",
		o.randomLen, o.workers, elapsed.Round(time.Millisecond),
		res.Total, res.Conv, res.MOT, res.Total-res.Detected())
	fmt.Fprint(o.out, report.FormatRunStats(res))
	if tracer != nil {
		spans, _ := tracer.Snapshot()
		fmt.Fprint(o.out, report.FormatStragglers(spans, o.top))
	}
	return nil
}

func int32ToNode(n int) motsim.NodeID { return motsim.NodeID(n) }
