// s27walkthrough reproduces the paper's Section 2 walkthrough on the real
// ISCAS-89 s27 circuit (Figures 1-3):
//
//   - Figure 1: conventional simulation of the walkthrough pattern with a
//     fully unspecified state leaves the primary output and all three
//     next-state variables unspecified;
//   - Figure 2: state expansion of each state variable at time 0, counting
//     the specified next-state/output values per choice (5 / 3 / 0);
//   - Figure 3: backward implication of a state variable at time 1, which
//     specifies seven values at time 0 — more than any time-0 expansion.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

// walkthroughPattern is the unique s27 input pattern with the Figure 1
// property (the paper's "(1001)" in its own expanded-netlist numbering).
const walkthroughPattern = "1011"

func main() {
	c, err := motsim.BuiltinCircuit("s27")
	if err != nil {
		log.Fatal(err)
	}
	pat := mustPattern(walkthroughPattern)
	allX := []motsim.Val{motsim.X, motsim.X, motsim.X}

	// --- Figure 1 ---
	vals := make([]motsim.Val, c.NumNodes())
	motsim.EvalFrame(c, pat, allX, nil, vals)
	fmt.Printf("Figure 1: conventional simulation of pattern %s, state xxx\n", walkthroughPattern)
	fmt.Printf("  primary output G17 = %v\n", vals[c.Outputs[0]])
	for i, ff := range c.FFs {
		fmt.Printf("  next-state variable %d (%s) = %v\n", i, c.NodeName(ff.D), vals[ff.D])
	}

	// --- Figure 2 ---
	fmt.Println("\nFigure 2: state expansion at time 0 (specified NS/PO values across both branches)")
	for i := range c.FFs {
		total := 0
		for _, alpha := range []motsim.Val{motsim.Zero, motsim.One} {
			ps := []motsim.Val{motsim.X, motsim.X, motsim.X}
			ps[i] = alpha
			motsim.EvalFrame(c, pat, ps, nil, vals)
			total += countSpecified(c, vals)
		}
		fmt.Printf("  expanding %s: %d specified values\n", c.NodeName(c.FFs[i].Q), total)
	}

	// --- Figure 3 ---
	fmt.Println("\nFigure 3: backward implication of G6 at time 1 (assert its next-state variable at time 0)")
	motsim.EvalFrame(c, pat, allX, nil, vals)
	base := make([]motsim.Val, len(vals))
	copy(base, vals)
	total := 0
	for _, alpha := range []motsim.Val{motsim.Zero, motsim.One} {
		fr := motsim.NewFrame(c, nil, base)
		if !fr.AssignNextState(1, alpha) || !fr.ImplyTwoPass() {
			log.Fatalf("unexpected conflict for alpha=%v", alpha)
		}
		n := 0
		if fr.Output(0).IsBinary() {
			n++
		}
		for j := range c.FFs {
			if fr.NextState(j).IsBinary() {
				n++
			}
		}
		fmt.Printf("  branch G6=%v: output=%v, next state = %v%v%v  (%d specified)\n",
			alpha, fr.Output(0), fr.NextState(0), fr.NextState(1), fr.NextState(2), n)
		total += n
	}
	fmt.Printf("  total: %d specified values at time 0 — versus at most 5 for any time-0 expansion\n", total)
}

func mustPattern(s string) motsim.Pattern {
	T, err := motsim.ReadVectors(strings.NewReader(s + "\n"))
	if err != nil {
		log.Fatal(err)
	}
	return T[0]
}

func countSpecified(c *motsim.Circuit, vals []motsim.Val) int {
	n := 0
	if vals[c.Outputs[0]].IsBinary() {
		n++
	}
	for _, ff := range c.FFs {
		if vals[ff.D].IsBinary() {
			n++
		}
	}
	return n
}
