// expansion demonstrates the state-expansion mechanics of Table 1: a
// fault whose conventional three-valued response is unspecified is
// resolved by replacing the incompletely specified faulty state with two
// expanded states, each of which leads to a detection.
//
// The scenario mirrors the paper's introductory example: with input a
// held at 0 the fault-free output is constantly 0, while under the stem
// fault a stuck-at-1 the outputs observe the free-running state
// variables, so conventional simulation sees only x.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	c, err := motsim.BuiltinCircuit("table1")
	if err != nil {
		log.Fatal(err)
	}
	a, _ := c.NodeByName("a")
	f := motsim.Fault{Node: a, Gate: -1, Stuck: motsim.One}
	const L = 4
	T := make(motsim.Sequence, L)
	for u := range T {
		T[u] = motsim.Pattern{motsim.Zero}
	}

	fmt.Printf("circuit %s, fault %s, %d all-zero patterns\n\n", c.Name, f.Name(c), L)

	// Conventional simulation, Table 1(a) style.
	fmt.Println("(a) conventional simulation")
	printRun(c, T, nil, []motsim.Val{motsim.X, motsim.X}, "fault free")
	printRun(c, T, &f, []motsim.Val{motsim.X, motsim.X}, "faulty")

	// Expansion of state variable q1 at time 0, Table 1(b) style.
	fmt.Println("\n(b) after expansion of q1 at time 0")
	printRun(c, T, &f, []motsim.Val{motsim.Zero, motsim.X}, "faulty, q1=0")
	printRun(c, T, &f, []motsim.Val{motsim.One, motsim.X}, "faulty, q1=1")

	// And the verdict from the full procedure.
	sim, err := motsim.New(c, T, motsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	o, err := sim.SimulateFault(f)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMOT procedure verdict: %v (expansions=%d, sequences=%d)\n",
		o.Outcome, o.Expansions, o.Sequences)
}

// printRun simulates T from the given initial state and prints the state
// and output rows in the style of Table 1.
func printRun(c *motsim.Circuit, T motsim.Sequence, f *motsim.Fault, st []motsim.Val, label string) {
	vals := make([]motsim.Val, c.NumNodes())
	states := fmt.Sprintf("%v%v", st[0], st[1])
	outputs := ""
	for u := range T {
		motsim.EvalFrame(c, T[u], st, f, vals)
		outputs += fmt.Sprintf(" %v%v", vals[c.Outputs[0]], vals[c.Outputs[1]])
		next := make([]motsim.Val, len(st))
		for i, ff := range c.FFs {
			next[i] = vals[ff.D]
			if f != nil {
				next[i] = f.Observed(ff.Q, next[i])
			}
		}
		st = next
		states += fmt.Sprintf(" %v%v", st[0], st[1])
	}
	fmt.Printf("  %-14s state: %s\n", label, states)
	fmt.Printf("  %-14s output:%s\n", "", outputs)
}
