// coverage sweeps test-sequence length on a suite circuit and reports
// detected-fault counts for conventional simulation, the [4] baseline,
// and the proposed procedure — the qualitative picture behind Table 2:
// the MOT procedures dominate conventional simulation at every length,
// with backward implications at least matching pure expansion.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	c, err := motsim.BuiltinCircuit("sg298")
	if err != nil {
		log.Fatal(err)
	}
	faults := motsim.CollapsedFaults(c)
	fmt.Println("circuit:", c.Stats())
	fmt.Printf("faults: %d (collapsed)\n\n", len(faults))
	fmt.Printf("%8s %14s %14s %14s\n", "patterns", "conventional", "baseline[4]", "proposed")

	for _, length := range []int{8, 16, 32, 64} {
		T := motsim.RandomSequence(c, length, 1298)
		conv, base, prop := 0, 0, 0

		sim, err := motsim.New(c, T, motsim.BaselineConfig())
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(faults, nil)
		if err != nil {
			log.Fatal(err)
		}
		conv, base = res.Conv, res.Detected()

		sim, err = motsim.New(c, T, motsim.DefaultConfig())
		if err != nil {
			log.Fatal(err)
		}
		if res, err = sim.Run(faults, nil); err != nil {
			log.Fatal(err)
		}
		prop = res.Detected()

		fmt.Printf("%8d %14d %14d %14d\n", length, conv, base, prop)
	}
}
