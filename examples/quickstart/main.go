// Quickstart: load the real ISCAS-89 s27 circuit, build a random test
// sequence, and run fault simulation under the multiple observation time
// approach, comparing the proposed procedure against conventional
// simulation and the state-expansion-only baseline.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	c, err := motsim.BuiltinCircuit("s27")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("circuit:", c.Stats())

	T := motsim.RandomSequence(c, 64, 1997)
	faults := motsim.CollapsedFaults(c)
	fmt.Printf("workload: %d patterns, %d collapsed stuck-at faults\n\n", len(T), len(faults))

	for _, m := range []struct {
		name string
		cfg  motsim.Config
	}{
		{"proposed (backward implications)", motsim.DefaultConfig()},
		{"baseline [4] (expansion only)", motsim.BaselineConfig()},
	} {
		sim, err := motsim.New(c, T, m.cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.Run(faults, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", m.name)
		fmt.Printf("  conventional detections: %d\n", res.Conv)
		fmt.Printf("  MOT-only detections:     %d\n", res.MOT)
		fmt.Printf("  total:                   %d / %d\n\n", res.Detected(), res.Total)
	}

	// Per-fault drill-down on a fault only the MOT approach credits: the
	// paper's introductory scenario (the faulty output equals a
	// free-running state variable, so conventional simulation sees only
	// x, yet every initial state leads to a detection).
	intro, err := motsim.BuiltinCircuit("intro")
	if err != nil {
		log.Fatal(err)
	}
	Ti := motsim.Sequence{{motsim.Zero}, {motsim.Zero}, {motsim.Zero}}
	sim, err := motsim.New(intro, Ti, motsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range motsim.CollapsedFaults(intro) {
		o, err := sim.SimulateFault(f)
		if err != nil {
			log.Fatal(err)
		}
		if o.Outcome == motsim.DetectedMOT {
			fmt.Printf("example MOT-only detection (intro circuit): %s\n", f.Name(intro))
			fmt.Printf("  implication pairs collected: %d\n", o.Pairs)
			fmt.Printf("  expansions: %d, final sequences: %d\n", o.Expansions, o.Sequences)
			fmt.Printf("  counters: detect=%d conf=%d extra=%d\n",
				o.Counters.Det, o.Counters.Conf, o.Counters.Extra)
			break
		}
	}
}
