// testability analyzes the real s27 circuit with the repository's
// analysis substrates: structural cones, sequential SCOAP measures, and
// the exhaustive detectability oracle. It shows why s27 is a natural MOT
// example: several of its values are not deterministically justifiable
// from the unknown power-up state, which is precisely the pessimism the
// multiple observation time approach removes.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/oracle"
	"repro/internal/testability"
)

func main() {
	c, err := motsim.BuiltinCircuit("s27")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.Stats())

	m := testability.Compute(c)
	fmt.Println("\nsequential SCOAP:", m.Summarize(c))
	fmt.Println("per-state-variable measures:")
	for i, ff := range c.FFs {
		q := ff.Q
		fmt.Printf("  %s: CC0=%s CC1=%s CO=%s\n",
			c.NodeName(q), scoap(m.CC0[q]), scoap(m.CC1[q]), scoap(m.CO[q]))
		_ = i
	}

	T := motsim.RandomSequence(c, 32, 1997)
	o, err := oracle.New(c, T)
	if err != nil {
		log.Fatal(err)
	}
	counts, verdicts, err := o.DecideAll(motsim.CollapsedFaults(c))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nexhaustive oracle over %d random patterns:\n", len(T))
	fmt.Printf("  conventional detections:   %d / %d\n", counts.Conventional, counts.Total)
	fmt.Printf("  restricted-MOT detectable: %d / %d\n", counts.RestrictedMOT, counts.Total)
	fmt.Printf("  full-MOT detectable:       %d / %d\n", counts.FullMOT, counts.Total)

	// Cross-check the simulator against the oracle.
	sim, err := motsim.New(c, T, motsim.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(motsim.CollapsedFaults(c), nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nMOT simulator: %d conventional + %d MOT-only = %d detected\n",
		res.Conv, res.MOT, res.Detected())
	for k, v := range verdicts {
		if res.Outcomes[k].Outcome.Detected() && !v.RestrictedMOT {
			log.Fatalf("soundness violation on fault %d", k)
		}
	}
	fmt.Println("every simulator detection confirmed by the oracle.")
}

func scoap(v int32) string {
	if v >= testability.Inf {
		return "inf"
	}
	return fmt.Sprint(v)
}
