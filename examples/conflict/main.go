// conflict reproduces Figure 4 of the paper: backward implication
// identifies that a state-variable value is inconsistent with the input
// sequence, so state expansion needs to consider only a single state.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	c, err := motsim.BuiltinCircuit("fig4")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("circuit:", c.Stats())

	// Apply input 0 with an unspecified state.
	vals := make([]motsim.Val, c.NumNodes())
	motsim.EvalFrame(c, motsim.Pattern{motsim.Zero}, []motsim.Val{motsim.X}, nil, vals)
	fmt.Println("\ninput 0 with state x implies only:")
	for _, name := range []string{"L3", "L4"} {
		id, _ := c.NodeByName(name)
		fmt.Printf("  %s = %v\n", name, vals[id])
	}

	// Expand the present-state variable at time 1 by asserting its
	// next-state variable (line 11) at time 0.
	fmt.Println("\nbackward implication of the present-state variable at time 1:")
	for _, alpha := range []motsim.Val{motsim.Zero, motsim.One} {
		fr := motsim.NewFrame(c, nil, vals)
		ok := fr.AssignNextState(0, alpha) && fr.ImplyTwoPass()
		if ok {
			fmt.Printf("  line 11 = %v: consistent\n", alpha)
		} else {
			fmt.Printf("  line 11 = %v: CONFLICT (first seen at %s) — this value is infeasible\n",
				alpha, c.NodeName(fr.ConflictNode()))
		}
	}
	fmt.Println("\nstate expansion therefore keeps a single state (0) — no sequence duplication needed.")
}
