package motsim

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuiltinCircuits(t *testing.T) {
	for _, name := range []string{"s27", "fig4", "intro", "table1"} {
		c, err := BuiltinCircuit(name)
		if err != nil {
			t.Fatalf("BuiltinCircuit(%s): %v", name, err)
		}
		if c.Name != name {
			t.Errorf("circuit name = %q, want %q", c.Name, name)
		}
	}
	if _, err := BuiltinCircuit("nope"); err == nil {
		t.Error("unknown circuit accepted")
	}
	if len(BuiltinNames()) < 17 {
		t.Error("BuiltinNames too short")
	}
}

func TestBenchFileRoundTrip(t *testing.T) {
	c, err := BuiltinCircuit("s27")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "s27.bench")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteBench(f, c); err != nil {
		t.Fatal(err)
	}
	f.Close()
	back, err := LoadBench(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "s27" {
		t.Errorf("loaded circuit named %q", back.Name)
	}
	if back.NumGates() != c.NumGates() || back.NumFFs() != c.NumFFs() {
		t.Error("round trip changed structure")
	}
	if _, err := LoadBench(filepath.Join(t.TempDir(), "missing.bench")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestParseBench(t *testing.T) {
	c, err := ParseBench("t", strings.NewReader("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"))
	if err != nil || c.NumGates() != 1 {
		t.Fatalf("ParseBench: %v", err)
	}
}

func TestEndToEndIntro(t *testing.T) {
	c, err := BuiltinCircuit("intro")
	if err != nil {
		t.Fatal(err)
	}
	T := make(Sequence, 3)
	for u := range T {
		T[u] = Pattern{Zero}
	}
	sim, err := New(c, T, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(CollapsedFaults(c), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.MOT < 1 {
		t.Fatalf("expected MOT detections on intro, got %+v", res)
	}
	if res.Detected() != res.Conv+res.MOT {
		t.Error("totals inconsistent")
	}
}

func TestFaultLists(t *testing.T) {
	c, _ := BuiltinCircuit("s27")
	full := Faults(c)
	collapsed := CollapsedFaults(c)
	if len(collapsed) >= len(full) || len(collapsed) == 0 {
		t.Errorf("collapsed=%d full=%d", len(collapsed), len(full))
	}
}

func TestRandomSequenceShape(t *testing.T) {
	c, _ := BuiltinCircuit("s27")
	T := RandomSequence(c, 10, 3)
	if len(T) != 10 || len(T[0]) != c.NumInputs() {
		t.Fatal("wrong sequence shape")
	}
}

func TestFrameWalkthrough(t *testing.T) {
	// The Figure 3 headline number through the public API.
	c, _ := BuiltinCircuit("s27")
	pat := Pattern{One, Zero, One, One}
	base := make([]Val, c.NumNodes())
	EvalFrame(c, pat, []Val{X, X, X}, nil, base)
	total := 0
	for _, alpha := range []Val{Zero, One} {
		fr := NewFrame(c, nil, base)
		if !fr.AssignNextState(1, alpha) || !fr.ImplyTwoPass() {
			t.Fatal("unexpected conflict")
		}
		if fr.Output(0).IsBinary() {
			total++
		}
		for j := 0; j < c.NumFFs(); j++ {
			if fr.NextState(j).IsBinary() {
				total++
			}
		}
	}
	if total != 7 {
		t.Fatalf("Figure 3 count = %d, want 7", total)
	}
}

func TestGenerateViaFacade(t *testing.T) {
	c, err := Generate(GenParams{Name: "t", Inputs: 4, Outputs: 2, FFs: 4, FreeFFs: 1, Gates: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumFFs() != 4 {
		t.Error("generated shape wrong")
	}
}

func TestSuiteViaFacade(t *testing.T) {
	if len(Suite()) != 13 {
		t.Error("suite size wrong")
	}
}

func TestGreedyViaFacade(t *testing.T) {
	c, _ := BuiltinCircuit("s27")
	cfg := DefaultGreedyConfig()
	cfg.MaxLen = 24
	cfg.Seed = 2
	T, err := GreedySequence(c, CollapsedFaults(c), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(T) == 0 || len(T) > 24 {
		t.Fatalf("greedy length %d", len(T))
	}
}

func TestVectorsViaFacade(t *testing.T) {
	T, err := ReadVectors(strings.NewReader("10\n01\n"))
	if err != nil || len(T) != 2 {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVectors(&sb, T); err != nil {
		t.Fatal(err)
	}
	back, err := ReadVectorsFile(writeTemp(t, sb.String()))
	if err != nil || len(back) != 2 {
		t.Fatal(err)
	}
}

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "v.vec")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestConfigsViaFacade(t *testing.T) {
	if !DefaultConfig().UseBackwardImplications {
		t.Error("default config must enable backward implications")
	}
	if BaselineConfig().UseBackwardImplications {
		t.Error("baseline config must disable backward implications")
	}
}
