package motsim

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation, plus ablation benches for the design choices listed
// in DESIGN.md §5. Regeneration of the actual table rows is done by
// cmd/mottables; these benchmarks measure the cost of each experiment's
// computational kernel and serve as regression guards for the measured
// shapes (each bench asserts its experiment's qualitative outcome once).

import (
	"testing"

	"repro/internal/bitsim"
	"repro/internal/cir"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/seqsim"
	"repro/internal/tgen"
	"repro/internal/xtrace"
)

// --- Figure 1: conventional three-valued simulation of s27 ---

func BenchmarkFig1Conventional(b *testing.B) {
	c := circuits.S27()
	pat := Pattern{One, Zero, One, One}
	ps := []Val{X, X, X}
	vals := make([]Val, c.NumNodes())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalFrame(c, pat, ps, nil, vals)
	}
	if vals[c.Outputs[0]] != X {
		b.Fatal("Figure 1 property violated")
	}
}

// --- Figure 2: state expansion at time 0 on s27 ---

func BenchmarkFig2Expansion(b *testing.B) {
	c := circuits.S27()
	pat := Pattern{One, Zero, One, One}
	vals := make([]Val, c.NumNodes())
	count := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count = 0
		for ffIdx := 0; ffIdx < c.NumFFs(); ffIdx++ {
			for _, alpha := range []Val{Zero, One} {
				ps := []Val{X, X, X}
				ps[ffIdx] = alpha
				EvalFrame(c, pat, ps, nil, vals)
				if vals[c.Outputs[0]].IsBinary() {
					count++
				}
				for _, ff := range c.FFs {
					if vals[ff.D].IsBinary() {
						count++
					}
				}
			}
		}
	}
	if count != 3+0+5 {
		b.Fatalf("Figure 2 counts = %d, want 8", count)
	}
}

// --- Figure 3: backward implication on s27 ---

func BenchmarkFig3Backward(b *testing.B) {
	c := circuits.S27()
	pat := Pattern{One, Zero, One, One}
	base := make([]Val, c.NumNodes())
	EvalFrame(c, pat, []Val{X, X, X}, nil, base)
	total := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, alpha := range []Val{Zero, One} {
			fr := NewFrame(c, nil, base)
			if !fr.AssignNextState(1, alpha) || !fr.ImplyTwoPass() {
				b.Fatal("unexpected conflict")
			}
			if fr.Output(0).IsBinary() {
				total++
			}
			for j := 0; j < c.NumFFs(); j++ {
				if fr.NextState(j).IsBinary() {
					total++
				}
			}
		}
	}
	if total != 7 {
		b.Fatalf("Figure 3 count = %d, want 7", total)
	}
}

// --- Figure 4: implication conflict ---

func BenchmarkFig4Conflict(b *testing.B) {
	c := circuits.Fig4()
	base := make([]Val, c.NumNodes())
	EvalFrame(c, Pattern{Zero}, []Val{X}, nil, base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fr := NewFrame(c, nil, base)
		if fr.AssignNextState(0, One) && fr.ImplyTwoPass() {
			b.Fatal("Figure 4 conflict not found")
		}
	}
}

// --- Table 1: the expansion-resolves-detection mechanism ---

func BenchmarkTable1Example(b *testing.B) {
	c := circuits.Table1()
	a, _ := c.NodeByName("a")
	f := Fault{Node: a, Gate: -1, Stuck: One}
	T := make(Sequence, 4)
	for u := range T {
		T[u] = Pattern{Zero}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := New(c, T, DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		o, err := sim.SimulateFault(f)
		if err != nil {
			b.Fatal(err)
		}
		if o.Outcome != DetectedMOT {
			b.Fatalf("outcome = %v, want DetectedMOT", o.Outcome)
		}
	}
}

// --- Table 2: whole-circuit fault counts, one bench per suite tier ---

// benchTable2 runs the full Table 2 experiment (proposed + baseline) for
// one suite entry per iteration and asserts the paper's ordering.
func benchTable2(b *testing.B, name string) {
	e, err := circuits.SuiteEntryByName(name)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunEntry(e, experiments.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if run.Proposed.Detected() < run.Baseline.Detected() ||
			run.Baseline.Detected() < run.Proposed.Conv {
			b.Fatalf("%s: ordering violated: conv=%d base=%d prop=%d",
				name, run.Proposed.Conv, run.Baseline.Detected(), run.Proposed.Detected())
		}
	}
}

func BenchmarkTable2_sg208(b *testing.B)  { benchTable2(b, "sg208") }
func BenchmarkTable2_sg298(b *testing.B)  { benchTable2(b, "sg298") }
func BenchmarkTable2_sg344(b *testing.B)  { benchTable2(b, "sg344") }
func BenchmarkTable2_sg420(b *testing.B)  { benchTable2(b, "sg420") }
func BenchmarkTable2_sg641(b *testing.B)  { benchTable2(b, "sg641") }
func BenchmarkTable2_sg713(b *testing.B)  { benchTable2(b, "sg713") }
func BenchmarkTable2_sg1423(b *testing.B) { benchTable2(b, "sg1423") }

// --- Table 3: counter collection on a counter-rich circuit ---

func BenchmarkTable3Counters(b *testing.B) {
	e, err := circuits.SuiteEntryByName("sg298")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := experiments.RunEntry(e, experiments.Options{SkipBaselineScaled: true})
		if err != nil {
			b.Fatal(err)
		}
		_, _, extra := run.Proposed.AvgCounters()
		if run.Proposed.MOT > 0 && extra <= 0 {
			b.Fatal("Table 3 extra counter should be positive when MOT detections exist")
		}
	}
}

// --- Closing experiment: deterministic (HITEC-style) sequence ---

func BenchmarkHITECStyle(b *testing.B) {
	e, err := circuits.SuiteEntryByName("sg298")
	if err != nil {
		b.Fatal(err)
	}
	c := e.Build()
	faults := fault.CollapsedList(c)
	gcfg := tgen.DefaultGreedyConfig()
	gcfg.MaxLen = 64
	gcfg.Seed = e.SeqSeed
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		T, err := tgen.Greedy(c, faults, gcfg)
		if err != nil {
			b.Fatal(err)
		}
		sim, err := core.NewSimulator(c, T, core.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(faults, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Prescreen: batched bit-parallel conventional stage ---

// benchPrescreen measures the whole-list pipeline on a >64-fault circuit
// with the conventional prescreen on vs. off; the workload is otherwise
// identical and the outcomes are asserted to agree with the stage
// counters. sg298 is MOT-stage-heavy (prescreen gains little); sg344 is
// conventionally-dominated (prescreen removes most serial step-0 work).
func benchPrescreen(b *testing.B, name string, on bool) {
	e, err := circuits.SuiteEntryByName(name)
	if err != nil {
		b.Fatal(err)
	}
	c := e.Build()
	T := tgen.Random(c.NumInputs(), e.SeqLen, e.SeqSeed)
	faults := fault.CollapsedList(c)
	if len(faults) <= bitsim.Lanes {
		b.Fatalf("need a >%d-fault circuit, got %d faults", bitsim.Lanes, len(faults))
	}
	cfg := core.DefaultConfig()
	cfg.Prescreen = on
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := core.NewSimulator(c, T, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(faults, nil)
		if err != nil {
			b.Fatal(err)
		}
		if on && res.Stages.PrescreenDropped != res.Conv {
			b.Fatal("prescreen drop count disagrees with conventional detections")
		}
	}
}

func BenchmarkPrescreenOn_sg298(b *testing.B)  { benchPrescreen(b, "sg298", true) }
func BenchmarkPrescreenOff_sg298(b *testing.B) { benchPrescreen(b, "sg298", false) }
func BenchmarkPrescreenOn_sg344(b *testing.B)  { benchPrescreen(b, "sg344", true) }
func BenchmarkPrescreenOff_sg344(b *testing.B) { benchPrescreen(b, "sg344", false) }

// --- Bit-parallel resimulation: 256-lane expansion stage ---

// benchResimBitParallel measures the whole-list pipeline with the
// bit-parallel Section 3.4 resimulation on vs. off. sg298 is the
// resimulation-heavy workload (many MOT-pipeline faults with large
// expansion sets); the outcomes are identical either way and the stage
// counters are asserted to reflect the selected path.
func benchResimBitParallel(b *testing.B, name string, on bool) {
	e, err := circuits.SuiteEntryByName(name)
	if err != nil {
		b.Fatal(err)
	}
	c := e.Build()
	T := tgen.Random(c.NumInputs(), e.SeqLen, e.SeqSeed)
	faults := fault.CollapsedList(c)
	cfg := core.DefaultConfig()
	cfg.BitParallelResim = on
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim, err := core.NewSimulator(c, T, cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := sim.Run(faults, nil)
		if err != nil {
			b.Fatal(err)
		}
		if on && res.Stages.ResimVectorPasses == 0 {
			b.Fatal("bit-parallel resim on but no vector passes recorded")
		}
		if !on && res.Stages.ResimVectorPasses != 0 {
			b.Fatal("bit-parallel resim off but vector passes recorded")
		}
	}
}

func BenchmarkResimBitParallelOn_sg298(b *testing.B)  { benchResimBitParallel(b, "sg298", true) }
func BenchmarkResimBitParallelOff_sg298(b *testing.B) { benchResimBitParallel(b, "sg298", false) }

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationImplicationPasses compares the paper's two-pass
// schedule against the fixpoint extension on the sg344 workload.
func BenchmarkAblationImplicationPasses(b *testing.B) {
	e, _ := circuits.SuiteEntryByName("sg344")
	c := e.Build()
	T := tgen.Random(c.NumInputs(), e.SeqLen, e.SeqSeed)
	faults := fault.CollapsedList(c)
	for _, sched := range []struct {
		name string
		s    core.Schedule
	}{{"two-pass", core.TwoPass}, {"fixpoint", core.Fixpoint}} {
		b.Run(sched.name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Schedule = sched.s
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim, err := core.NewSimulator(c, T, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(faults, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationBackwardDepth compares single-time-unit backward
// implications (the paper) with the multi-time-unit extension.
func BenchmarkAblationBackwardDepth(b *testing.B) {
	e, _ := circuits.SuiteEntryByName("sg344")
	c := e.Build()
	T := tgen.Random(c.NumInputs(), e.SeqLen, e.SeqSeed)
	faults := fault.CollapsedList(c)
	for _, depth := range []int{1, 2, 4} {
		b.Run(map[int]string{1: "depth1", 2: "depth2", 4: "depth4"}[depth], func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.BackwardDepth = depth
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim, err := core.NewSimulator(c, T, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(faults, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNStates sweeps the expansion budget.
func BenchmarkAblationNStates(b *testing.B) {
	e, _ := circuits.SuiteEntryByName("sg298")
	c := e.Build()
	T := tgen.Random(c.NumInputs(), e.SeqLen, e.SeqSeed)
	faults := fault.CollapsedList(c)
	for _, n := range []int{4, 16, 64, 256} {
		b.Run(map[int]string{4: "n4", 16: "n16", 64: "n64", 256: "n256"}[n], func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.NStates = n
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim, err := core.NewSimulator(c, T, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(faults, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMetricsOverhead measures the cost of the instrumentation
// layer on the sg298 whole-list workload: Config.Metrics on (stage
// timers, pool gauges, per-fault histograms) against off. The
// acceptance bar is a metrics-on median within 3% of metrics-off.
func BenchmarkMetricsOverhead(b *testing.B) {
	e, _ := circuits.SuiteEntryByName("sg298")
	c := e.Build()
	T := tgen.Random(c.NumInputs(), e.SeqLen, e.SeqSeed)
	faults := fault.CollapsedList(c)
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Metrics = on
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				sim, err := core.NewSimulator(c, T, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(faults, nil)
				if err != nil {
					b.Fatal(err)
				}
				if on && res.Metrics == nil {
					b.Fatal("metrics-on run returned no histograms")
				}
				if !on && res.Metrics != nil {
					b.Fatal("metrics-off run collected histograms")
				}
			}
		})
	}
}

// BenchmarkLiveOverhead measures the cost of live snapshot publication
// on the sg298 whole-list workload: Config.Live set (coarse-cadence
// shared-counter publication for /metrics scraping) against nil. The
// acceptance bar is a live-on median within 2% of live-off.
func BenchmarkLiveOverhead(b *testing.B) {
	e, _ := circuits.SuiteEntryByName("sg298")
	c := e.Build()
	T := tgen.Random(c.NumInputs(), e.SeqLen, e.SeqSeed)
	faults := fault.CollapsedList(c)
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				var live *core.LiveStats
				if on {
					live = &core.LiveStats{}
					cfg.Live = live
				}
				sim, err := core.NewSimulator(c, T, cfg)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.Run(faults, nil)
				if err != nil {
					b.Fatal(err)
				}
				if on && live.Snapshot().FaultsDone != int64(res.Total) {
					b.Fatal("live snapshot incomplete after run")
				}
			}
		})
	}
}

// BenchmarkSpanOverhead measures the cost of hierarchical span tracing
// on the sg298 whole-list workload: Config.Tracer set at the default
// 5% per-fault sampling rate against nil. The acceptance bar is a
// tracing-on median within 5% of tracing-off.
func BenchmarkSpanOverhead(b *testing.B) {
	e, _ := circuits.SuiteEntryByName("sg298")
	c := e.Build()
	T := tgen.Random(c.NumInputs(), e.SeqLen, e.SeqSeed)
	faults := fault.CollapsedList(c)
	for _, on := range []bool{false, true} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				var tracer *xtrace.Tracer
				if on {
					tracer = xtrace.New(xtrace.Options{})
					cfg.Tracer = tracer // TraceSampleRate 0 → default 0.05
				}
				sim, err := core.NewSimulator(c, T, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := sim.Run(faults, nil); err != nil {
					b.Fatal(err)
				}
				if on {
					if st := tracer.Stats(); st.Spans == 0 || st.Dropped != 0 {
						b.Fatalf("traced run recorded %d spans, dropped %d", st.Spans, st.Dropped)
					}
				}
			}
		})
	}
}

// BenchmarkAblationFrameEval compares the three conventional-simulation
// engines: bit-parallel (63 machines per word), event-driven serial, and
// full-pass serial.
func BenchmarkAblationFrameEval(b *testing.B) {
	e, _ := circuits.SuiteEntryByName("sg641")
	c := e.Build()
	T := tgen.Random(c.NumInputs(), e.SeqLen, e.SeqSeed)
	faults := fault.CollapsedList(c)
	b.Run("bitparallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := bitsim.Run(c, T, faults); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, mode := range []string{"delta", "full"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				var s *seqsim.Simulator
				if mode == "delta" {
					s = seqsim.New(c)
				} else {
					s = seqsim.NewFullPass(c)
				}
				good, err := s.Run(T, nil, true)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.RunFaults(T, good, faults); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWarmStart measures what the service's cross-run cache saves:
// "setup" isolates simulator construction (compile + fault-free trace,
// the part a warm hit skips entirely), "run" measures a full whole-list
// simulation cold versus warm-started from a previous run's artifacts.
func BenchmarkWarmStart(b *testing.B) {
	e, err := circuits.SuiteEntryByName("sg298")
	if err != nil {
		b.Fatal(err)
	}
	c := e.Build()
	T := tgen.Random(c.NumInputs(), 96, 1)
	faults := fault.CollapsedList(c)
	base, err := core.NewSimulator(c, T, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	warm := core.Warm{CC: base.CC(), Good: base.Good()}

	b.Run("setup-cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cir.Drop(c) // force a real compile, as for a first-seen netlist
			if _, err := core.NewSimulator(c, T, core.DefaultConfig()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("setup-warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.NewSimulatorWarm(c, T, core.DefaultConfig(), warm); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, mode := range []string{"run-cold", "run-warm"} {
		b.Run(mode, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				w := warm
				if mode == "run-cold" {
					cir.Drop(c)
					w = core.Warm{}
				}
				sim, err := core.NewSimulatorWarm(c, T, core.DefaultConfig(), w)
				if err != nil {
					b.Fatal(err)
				}
				res, err := sim.RunParallel(faults, 4, nil)
				if err != nil {
					b.Fatal(err)
				}
				if res.Total != len(faults) {
					b.Fatal("short run")
				}
			}
		})
	}
}
